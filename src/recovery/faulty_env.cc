#include "recovery/faulty_env.h"

#include <algorithm>

#include "common/sim_hook.h"

namespace mvcc {

namespace {

Status CrashStatus(const char* op) {
  return Status::DataLoss(std::string("injected crash at ") + op);
}

}  // namespace

// Wraps a base WritableFile; each Append/Sync consults the env for the
// fault to inject before touching the base file.
class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::string path,
                     std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    const FaultKind fault = env_->NextOp("append");
    switch (fault) {
      case FaultKind::kCrash:
        return CrashStatus("append");
      case FaultKind::kEio:
        return Status::DataLoss("injected EIO: write " + path_);
      case FaultKind::kEnospc:
        return Status::ResourceExhausted("injected ENOSPC: write " + path_);
      case FaultKind::kTornWrite: {
        // Persist a non-empty strict prefix — the classic torn tail the
        // recovery scan must detect and salvage.
        const size_t keep = std::max<size_t>(1, data.size() / 2);
        Status s = AppendCharged(data.substr(0, keep));
        if (!s.ok()) return s;
        return Status::DataLoss("injected torn write: " + path_);
      }
      case FaultKind::kBitFlip: {
        std::string corrupt(data);
        if (!corrupt.empty()) corrupt[corrupt.size() / 2] ^= 0x10;
        // The write "succeeds": the caller acknowledges the commit and
        // only recovery's CRC scan can notice.
        return AppendCharged(corrupt);
      }
      case FaultKind::kNone:
        break;
    }
    if (env_->OverCapacity(data.size())) {
      return Status::ResourceExhausted("injected ENOSPC (disk full): write " +
                                       path_);
    }
    return AppendCharged(data);
  }

  Status Sync() override {
    const FaultKind fault = env_->NextOp("sync");
    switch (fault) {
      case FaultKind::kCrash:
        return CrashStatus("sync");
      case FaultKind::kEio:
      case FaultKind::kTornWrite:
      case FaultKind::kBitFlip:
        return Status::DataLoss("injected EIO: fsync " + path_);
      case FaultKind::kEnospc:
        return Status::ResourceExhausted("injected ENOSPC: fsync " + path_);
      case FaultKind::kNone:
        break;
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }
  uint64_t offset() const override { return base_->offset(); }

 private:
  Status AppendCharged(std::string_view data) {
    Status s = base_->Append(data);
    if (s.ok()) env_->ChargeBytes(path_, data.size());
    return s;
  }

  FaultyEnv* const env_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultyEnv::FaultyEnv(Env* base) : base_(base) {}

void FaultyEnv::FailAt(uint64_t index, FaultKind kind) {
  std::lock_guard<std::mutex> guard(mu_);
  by_index_[index] = kind;
}

void FaultyEnv::FailAtOp(const std::string& op, uint64_t nth, FaultKind kind) {
  std::lock_guard<std::mutex> guard(mu_);
  by_op_[op][nth] = kind;
}

void FaultyEnv::set_capacity_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  capacity_bytes_ = bytes;
}

uint64_t FaultyEnv::op_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return next_index_;
}

uint64_t FaultyEnv::used_bytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return used_bytes_;
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> guard(mu_);
  return crashed_;
}

void FaultyEnv::ClearFaults() {
  std::lock_guard<std::mutex> guard(mu_);
  crashed_ = false;
  by_index_.clear();
  by_op_.clear();
}

FaultKind FaultyEnv::NextOp(const char* op) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t index = next_index_++;
  const uint64_t nth_of_op = op_counts_[op]++;
  if (crashed_) return FaultKind::kCrash;

  FaultKind kind = FaultKind::kNone;
  if (auto it = by_index_.find(index); it != by_index_.end()) {
    kind = it->second;
  } else if (auto op_it = by_op_.find(op); op_it != by_op_.end()) {
    if (auto nth_it = op_it->second.find(nth_of_op);
        nth_it != op_it->second.end()) {
      kind = nth_it->second;
    }
  }
  // The simulator's fault query can force a crash at any index even when
  // nothing is armed explicitly (crash-matrix enumeration). Safe under
  // mu_: OnEnvOp never yields.
  if (kind == FaultKind::kNone) {
    if (SimHook* hook = InstalledSimHook()) {
      if (hook->OnEnvOp(op, index)) kind = FaultKind::kCrash;
    }
  }
  if (kind == FaultKind::kCrash) crashed_ = true;
  return kind;
}

void FaultyEnv::ChargeBytes(const std::string& path, uint64_t n) {
  std::lock_guard<std::mutex> guard(mu_);
  used_bytes_ += n;
  file_bytes_[path] += n;
}

void FaultyEnv::CreditFile(const std::string& path) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = file_bytes_.find(path);
  if (it == file_bytes_.end()) return;
  used_bytes_ -= std::min(used_bytes_, it->second);
  file_bytes_.erase(it);
}

bool FaultyEnv::OverCapacity(uint64_t extra) const {
  std::lock_guard<std::mutex> guard(mu_);
  return capacity_bytes_ != 0 && used_bytes_ + extra > capacity_bytes_;
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewAppendableFile(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (crashed_) return CrashStatus("open");
  }
  auto base = base_->NewAppendableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultyWritableFile>(
      this, path, std::move(base).value()));
}

Result<std::string> FaultyEnv::ReadFileToString(const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultyEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Result<std::vector<std::string>> FaultyEnv::ListDir(const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultyEnv::DeleteFile(const std::string& path) {
  switch (NextOp("delete")) {
    case FaultKind::kCrash:
      return CrashStatus("delete");
    case FaultKind::kEio:
    case FaultKind::kTornWrite:
    case FaultKind::kBitFlip:
      return Status::DataLoss("injected EIO: unlink " + path);
    case FaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC: unlink " + path);
    case FaultKind::kNone:
      break;
  }
  Status s = base_->DeleteFile(path);
  if (s.ok() || s.IsNotFound()) CreditFile(path);
  return s;
}

Status FaultyEnv::RenameFile(const std::string& from, const std::string& to) {
  switch (NextOp("rename")) {
    case FaultKind::kCrash:
      return CrashStatus("rename");
    case FaultKind::kEio:
    case FaultKind::kTornWrite:
    case FaultKind::kBitFlip:
      return Status::DataLoss("injected EIO: rename " + from);
    case FaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC: rename " + from);
    case FaultKind::kNone:
      break;
  }
  Status s = base_->RenameFile(from, to);
  if (s.ok()) {
    std::lock_guard<std::mutex> guard(mu_);
    if (auto it = file_bytes_.find(from); it != file_bytes_.end()) {
      file_bytes_[to] += it->second;
      file_bytes_.erase(it);
    }
  }
  return s;
}

Status FaultyEnv::TruncateFile(const std::string& path, uint64_t size) {
  switch (NextOp("truncate")) {
    case FaultKind::kCrash:
      return CrashStatus("truncate");
    case FaultKind::kEio:
    case FaultKind::kTornWrite:
    case FaultKind::kBitFlip:
      return Status::DataLoss("injected EIO: truncate " + path);
    case FaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC: truncate " + path);
    case FaultKind::kNone:
      break;
  }
  Status s = base_->TruncateFile(path, size);
  if (s.ok()) {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = file_bytes_.find(path);
    if (it != file_bytes_.end() && it->second > size) {
      used_bytes_ -= std::min(used_bytes_, it->second - size);
      it->second = size;
    }
  }
  return s;
}

Status FaultyEnv::CreateDirIfMissing(const std::string& dir) {
  if (NextOp("mkdir") == FaultKind::kCrash) return CrashStatus("mkdir");
  return base_->CreateDirIfMissing(dir);
}

Status FaultyEnv::SyncDir(const std::string& dir) {
  switch (NextOp("syncdir")) {
    case FaultKind::kCrash:
      return CrashStatus("syncdir");
    case FaultKind::kEio:
    case FaultKind::kTornWrite:
    case FaultKind::kBitFlip:
      return Status::DataLoss("injected EIO: fsync(dir) " + dir);
    case FaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC: fsync(dir) " + dir);
    case FaultKind::kNone:
      break;
  }
  return base_->SyncDir(dir);
}

}  // namespace mvcc
