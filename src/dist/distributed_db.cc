#include "dist/distributed_db.h"

#include <algorithm>
#include <utility>

namespace mvcc {

DistributedDb::DistributedDb(Options options) : options_(options),
                                                network_(options.network_delay_ns) {
  const int n = std::max(options_.num_sites, 1);
  sites_.reserve(n);
  for (int i = 0; i < n; ++i) {
    sites_.push_back(std::make_unique<Site>(i, &counters_));
  }
  for (uint64_t key = 0; key < options_.preload_keys; ++key) {
    sites_[SiteOf(key)]->Preload(key, options_.initial_value);
  }
}

std::unique_ptr<DistTransaction> DistributedDb::Begin(TxnClass cls,
                                                      int home_site) {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::unique_ptr<DistTransaction>(
      new DistTransaction(this, id, cls, home_site));
  if (cls == TxnClass::kReadOnly) {
    // One start number from the home site; nothing else, ever.
    txn->sn_ = sites_[home_site]->StartReadOnly();
  }
  return txn;
}

size_t DistributedDb::RunGc() {
  size_t reclaimed = 0;
  for (auto& site : sites_) reclaimed += site->RunGc();
  return reclaimed;
}

size_t DistributedDb::TotalVersions() {
  size_t total = 0;
  for (auto& site : sites_) total += site->store().TotalVersions();
  return total;
}

DistTransaction::DistTransaction(DistributedDb* db, TxnId id, TxnClass cls,
                                 int home_site)
    : db_(db), id_(id), cls_(cls), home_site_(home_site) {}

DistTransaction::~DistTransaction() {
  if (!finished_) Abort();
}

Result<Value> DistTransaction::Read(ObjectKey key) {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  const int target = db_->SiteOf(key);
  Site& site = db_->site(target);

  if (cls_ == TxnClass::kReadOnly) {
    if (!db_->network_.Send(MessageType::kSnapshotRead, home_site_,
                            target)) {
      return Status::Unavailable("snapshot read message to site " +
                                 std::to_string(target) + " lost");
    }
    Result<VersionRead> read = site.SnapshotRead(sn_, key);
    if (!read.ok()) return read.status();
    reads_.push_back(ReadEntry{key, read->version, read->writer});
    return std::move(read->value);
  }

  if (!db_->network_.Send(MessageType::kRemoteRead, home_site_, target)) {
    return Status::Unavailable("read message to site " +
                               std::to_string(target) + " lost");
  }
  Result<VersionRead> read = site.Read(id_, key);
  if (!read.ok()) {
    if (read.status().IsAborted()) Abort();
    return read.status();
  }
  if (std::find(participants_.begin(), participants_.end(), &site) ==
      participants_.end()) {
    participants_.push_back(&site);
  }
  if (read->version != kPendingVersion) {
    reads_.push_back(ReadEntry{key, read->version, read->writer});
  }
  return std::move(read->value);
}

Result<std::vector<std::pair<ObjectKey, Value>>> DistTransaction::Scan(
    ObjectKey lo, ObjectKey hi) {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  if (cls_ != TxnClass::kReadOnly) {
    return Status::InvalidArgument(
        "distributed range scans are read-only only");
  }
  std::vector<std::pair<ObjectKey, Value>> merged;
  for (int s = 0; s < db_->num_sites(); ++s) {
    if (!db_->network_.Send(MessageType::kSnapshotRead, home_site_, s)) {
      return Status::Unavailable("snapshot scan message to site " +
                                 std::to_string(s) + " lost");
    }
    auto rows = db_->site(s).SnapshotScan(sn_, lo, hi);
    if (!rows.ok()) return rows.status();
    for (auto& [key, read] : *rows) {
      reads_.push_back(ReadEntry{key, read.version, read.writer});
      merged.emplace_back(key, std::move(read.value));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return merged;
}

Status DistTransaction::Write(ObjectKey key, Value value) {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  if (cls_ == TxnClass::kReadOnly) {
    return Status::InvalidArgument(
        "write issued by a read-only transaction");
  }
  const int target = db_->SiteOf(key);
  Site& site = db_->site(target);
  if (!db_->network_.Send(MessageType::kRemoteWrite, home_site_, target)) {
    return Status::Unavailable("write message to site " +
                               std::to_string(target) + " lost");
  }
  Status s = site.Write(id_, key, std::move(value));
  if (!s.ok()) {
    if (s.IsAborted()) Abort();
    return s;
  }
  if (std::find(participants_.begin(), participants_.end(), &site) ==
      participants_.end()) {
    participants_.push_back(&site);
  }
  if (std::find(write_keys_.begin(), write_keys_.end(), key) ==
      write_keys_.end()) {
    write_keys_.push_back(key);
  }
  return Status::OK();
}

Status DistTransaction::Commit() {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  finished_ = true;
  if (cls_ == TxnClass::kReadOnly) {
    // end(T) = phi: zero messages, zero synchronization.
    db_->counters_.ro_commits.fetch_add(1, std::memory_order_relaxed);
    RecordHistory();
    return Status::OK();
  }
  TwoPhaseCommitCoordinator coordinator(&db_->network_, home_site_);
  const uint32_t tiebreak = static_cast<uint32_t>(id_);
  Status s = coordinator.CommitTransaction(id_, tiebreak, participants_,
                                           &global_tn_);
  if (!s.ok()) {
    db_->counters_.rw_aborts.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  db_->counters_.rw_commits.fetch_add(1, std::memory_order_relaxed);
  RecordHistory();
  return Status::OK();
}

void DistTransaction::Abort() {
  if (finished_) return;
  finished_ = true;
  if (cls_ == TxnClass::kReadOnly) {
    db_->counters_.ro_aborts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TwoPhaseCommitCoordinator coordinator(&db_->network_, home_site_);
  coordinator.AbortTransaction(id_, participants_);
  db_->counters_.rw_aborts.fetch_add(1, std::memory_order_relaxed);
}

void DistTransaction::RecordHistory() {
  if (db_->history() == nullptr) return;
  TxnRecord record;
  record.id = id_;
  record.cls = cls_;
  record.number = txn_number();
  record.reads.reserve(reads_.size());
  for (const ReadEntry& r : reads_) {
    record.reads.push_back(RecordedRead{r.key, r.version, r.writer});
  }
  record.writes.reserve(write_keys_.size());
  for (ObjectKey key : write_keys_) {
    record.writes.push_back(RecordedWrite{key, global_tn_});
  }
  db_->history_.Record(std::move(record));
}

}  // namespace mvcc
