#ifndef MVCC_DIST_DISTRIBUTED_DB_H_
#define MVCC_DIST_DISTRIBUTED_DB_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/ids.h"
#include "common/result.h"
#include "dist/coordinator.h"
#include "dist/network.h"
#include "dist/site.h"
#include "history/history.h"
#include "txn/txn_context.h"

namespace mvcc {

class DistTransaction;

// The distributed multiversion database of Section 6: every site keeps
// its own tnc, vtnc and VCQueue; read-write transactions commit with 2PC
// plus transaction-number agreement; read-only transactions take a single
// start number from their home site, need NO a-priori knowledge of the
// sites they will read (unlike [8]), send no 2PC messages, and are
// globally one-copy serializable (checked by the MVSG over the merged
// history).
class DistributedDb {
 public:
  struct Options {
    int num_sites = 3;
    // Preload keys [0, preload_keys); key k lives at site k % num_sites.
    uint64_t preload_keys = 0;
    Value initial_value = "0";
    bool record_history = false;
    int64_t network_delay_ns = 0;
  };

  explicit DistributedDb(Options options);

  // Begins a transaction homed at `home_site` (where a read-only
  // transaction obtains its start number).
  std::unique_ptr<DistTransaction> Begin(TxnClass cls, int home_site);

  int SiteOf(ObjectKey key) const {
    return static_cast<int>(key % sites_.size());
  }
  Site& site(int i) { return *sites_[i]; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

  SimulatedNetwork& network() { return network_; }
  EventCounters& counters() { return counters_; }
  History* history() { return options_.record_history ? &history_ : nullptr; }

  // Runs one garbage collection pass at every site (each under its own
  // local watermark); returns total versions reclaimed.
  size_t RunGc();

  // Total versions retained across all sites.
  size_t TotalVersions();

 private:
  friend class DistTransaction;

  Options options_;
  SimulatedNetwork network_;
  EventCounters counters_;
  History history_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::atomic<TxnId> next_txn_id_{1};
};

// A distributed transaction handle. Driven by one thread.
class DistTransaction {
 public:
  ~DistTransaction();
  DistTransaction(const DistTransaction&) = delete;
  DistTransaction& operator=(const DistTransaction&) = delete;

  // Reads `key` from its owning site. Read-only transactions use the
  // snapshot-read path (no locks, no registration, no messages besides
  // the read itself); read-write transactions take a shared lock there.
  Result<Value> Read(ObjectKey key);

  // Global snapshot range scan (read-only transactions): one
  // snapshot-scan request per site, results merged in key order. Needs
  // no a-priori knowledge of which sites hold data in the range.
  Result<std::vector<std::pair<ObjectKey, Value>>> Scan(ObjectKey lo,
                                                        ObjectKey hi);

  // Buffers a write at the owning site under an exclusive lock.
  Status Write(ObjectKey key, Value value);

  // Read-write: two-phase commit with number agreement. Read-only: no
  // messages at all.
  Status Commit();

  void Abort();

  TxnId id() const { return id_; }
  TxnClass txn_class() const { return cls_; }
  TxnNumber start_number() const { return sn_; }
  // Agreed global transaction number (valid after a successful read-write
  // commit); start number for read-only transactions.
  TxnNumber txn_number() const {
    return cls_ == TxnClass::kReadOnly ? sn_ : global_tn_;
  }
  bool active() const { return !finished_; }

 private:
  friend class DistributedDb;
  DistTransaction(DistributedDb* db, TxnId id, TxnClass cls, int home_site);

  void RecordHistory();

  DistributedDb* db_;
  TxnId id_;
  TxnClass cls_;
  int home_site_;
  TxnNumber sn_ = kInvalidTxnNumber;
  TxnNumber global_tn_ = kInvalidTxnNumber;
  bool finished_ = false;

  std::vector<Site*> participants_;  // sites where this txn holds state
  std::vector<ReadEntry> reads_;
  std::vector<ObjectKey> write_keys_;
};

}  // namespace mvcc

#endif  // MVCC_DIST_DISTRIBUTED_DB_H_
