#ifndef MVCC_DIST_COORDINATOR_H_
#define MVCC_DIST_COORDINATOR_H_

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dist/network.h"
#include "dist/site.h"

namespace mvcc {

// Two-phase commit coordinator for a distributed read-write transaction,
// extended with transaction-number agreement: each participant's PREPARE
// response proposes a local transaction number; the agreed global number
// is the maximum of the proposals, and each participant promotes its
// registration to it during phase 2. Because every conflicting
// transaction at a site must wait for this one's locks, and Promote()
// pushes the site counter past the agreed number, later conflicting
// transactions always propose (and agree on) larger numbers — global tn
// order extends every local conflict order.
class TwoPhaseCommitCoordinator {
 public:
  TwoPhaseCommitCoordinator(SimulatedNetwork* network, int coordinator_site)
      : network_(network), coordinator_site_(coordinator_site) {}

  // Runs both phases across `participants`. On success returns OK and
  // sets *global_tn. On failure every participant has been told to abort.
  Status CommitTransaction(TxnId txn, uint32_t tiebreak,
                           const std::vector<Site*>& participants,
                           TxnNumber* global_tn);

  // Aborts at every participant (used for user aborts and operation
  // failures before commit).
  void AbortTransaction(TxnId txn, const std::vector<Site*>& participants);

 private:
  // Retransmits a decided phase-2 message (COMMIT/ABORT) until delivered.
  void SendReliably(MessageType type, int to_site);

  SimulatedNetwork* network_;
  int coordinator_site_;
};

}  // namespace mvcc

#endif  // MVCC_DIST_COORDINATOR_H_
