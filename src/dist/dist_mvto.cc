#include "dist/dist_mvto.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/sim_hook.h"

namespace mvcc {

DistMvtoDb::DistMvtoDb(Options options) : options_(std::move(options)) {
  const int n = std::max(options_.num_sites, 1);
  sites_.reserve(n);
  for (int i = 0; i < n; ++i) {
    sites_.push_back(std::make_unique<MvtoSite>());
  }
  for (ObjectKey key = 0; key < options_.preload_keys; ++key) {
    MvtoSite& site = *sites_[SiteOf(key)];
    VersionMeta meta;
    meta.committed = true;
    meta.writer = 0;
    meta.value = options_.initial_value;
    site.table[key].versions.emplace(0, std::move(meta));
  }
}

TxnNumber DistMvtoDb::IssueTimestamp(int site, TxnId id) {
  const uint64_t counter =
      sites_[site]->clock.fetch_add(1, std::memory_order_relaxed) + 1;
  return (counter << 32) | (id & 0xFFFFFFFFULL);
}

void DistMvtoDb::ObserveTimestamp(int site, TxnNumber ts) {
  const uint64_t counter = ts >> 32;
  auto& clock = sites_[site]->clock;
  uint64_t current = clock.load(std::memory_order_relaxed);
  while (current < counter &&
         !clock.compare_exchange_weak(current, counter)) {
  }
}

std::unique_ptr<DistMvtoTxn> DistMvtoDb::Begin(TxnClass cls,
                                               int home_site) {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  const TxnNumber ts = IssueTimestamp(home_site, id);
  return std::unique_ptr<DistMvtoTxn>(
      new DistMvtoTxn(this, id, cls, home_site, ts));
}

DistMvtoTxn::DistMvtoTxn(DistMvtoDb* db, TxnId id, TxnClass cls,
                         int home_site, TxnNumber ts)
    : db_(db), id_(id), cls_(cls), home_site_(home_site), ts_(ts) {}

DistMvtoTxn::~DistMvtoTxn() {
  if (!finished_) Abort();
}

void DistMvtoTxn::AddParticipant(int site) {
  if (std::find(participants_.begin(), participants_.end(), site) ==
      participants_.end()) {
    participants_.push_back(site);
  }
}

Result<Value> DistMvtoTxn::Read(ObjectKey key) {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  auto own = write_set_.find(key);
  if (own != write_set_.end()) return own->second;

  const int target = db_->SiteOf(key);
  db_->network_.Send(MessageType::kRemoteRead, home_site_, target);
  db_->ObserveTimestamp(target, ts_);
  auto& site = *db_->sites_[target];
  // Reading updates r-ts metadata and enrolls the site in this
  // transaction's two-phase commit — read-only transactions included.
  AddParticipant(target);

  std::unique_lock<std::mutex> lock(site.mu);
  auto st = site.table.find(key);
  if (st == site.table.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  bool counted_block = false;
  while (true) {
    auto it = st->second.versions.upper_bound(ts_);
    if (it == st->second.versions.begin()) {
      return Status::NotFound("key " + std::to_string(key) +
                              " has no version <= ts");
    }
    --it;
    DistMvtoDb::VersionMeta& meta = it->second;
    if (ts_ > meta.rts) {
      meta.rts = ts_;
      meta.rts_by_ro = cls_ == TxnClass::kReadOnly;
      if (cls_ == TxnClass::kReadOnly) {
        db_->counters_.ro_metadata_writes.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    if (meta.committed) {
      reads_.push_back(ReadEntry{key, it->first, meta.writer});
      return meta.value;
    }
    if (!counted_block) {
      counted_block = true;
      auto& counter = cls_ == TxnClass::kReadOnly
                          ? db_->counters_.ro_blocks
                          : db_->counters_.rw_blocks;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    SimAwareCvWait(site.cv, lock, "dist_mvto.read_wait");
  }
}

Status DistMvtoTxn::Write(ObjectKey key, Value value) {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  if (cls_ == TxnClass::kReadOnly) {
    return Status::InvalidArgument(
        "write issued by a read-only transaction");
  }
  const int target = db_->SiteOf(key);
  db_->network_.Send(MessageType::kRemoteWrite, home_site_, target);
  db_->ObserveTimestamp(target, ts_);
  auto& site = *db_->sites_[target];
  AddParticipant(target);

  std::unique_lock<std::mutex> lock(site.mu);
  DistMvtoDb::KeyState& st = site.table[key];
  auto own = st.versions.find(ts_);
  if (own != st.versions.end() && !own->second.committed) {
    own->second.value = value;
  } else {
    auto it = st.versions.lower_bound(ts_);
    if (it != st.versions.begin()) {
      auto prev = std::prev(it);
      if (prev->second.rts > ts_) {
        if (prev->second.rts_by_ro) {
          db_->counters_.rw_aborts_caused_by_ro.fetch_add(
              1, std::memory_order_relaxed);
        }
        lock.unlock();
        Abort();
        return Status::Aborted("MVTO write rejected on key " +
                               std::to_string(key));
      }
    }
    DistMvtoDb::VersionMeta meta;
    meta.committed = false;
    meta.writer = id_;
    meta.value = value;
    st.versions.emplace(ts_, std::move(meta));
  }
  auto wit = write_set_.find(key);
  if (wit == write_set_.end()) {
    write_set_.emplace(key, std::move(value));
    write_order_.push_back(key);
  } else {
    wit->second = std::move(value);
  }
  return Status::OK();
}

Status DistMvtoTxn::Commit() {
  if (finished_) {
    return Status::InvalidArgument("transaction already finished");
  }
  finished_ = true;
  // Two-phase commit over EVERY participant — this is the measured cost:
  // a read-only transaction that read at k sites pays 2k messages here,
  // because its r-ts updates must commit atomically.
  for (int site_id : participants_) {
    db_->network_.Send(MessageType::kPrepare, home_site_, site_id);
  }
  for (int site_id : participants_) {
    db_->network_.Send(MessageType::kCommit, home_site_, site_id);
    auto& site = *db_->sites_[site_id];
    std::lock_guard<std::mutex> guard(site.mu);
    for (ObjectKey key : write_order_) {
      if (db_->SiteOf(key) != site_id) continue;
      auto st = site.table.find(key);
      if (st == site.table.end()) continue;
      auto it = st->second.versions.find(ts_);
      if (it != st->second.versions.end()) it->second.committed = true;
    }
    site.cv.notify_all();
  }
  auto& commits = cls_ == TxnClass::kReadOnly ? db_->counters_.ro_commits
                                              : db_->counters_.rw_commits;
  commits.fetch_add(1, std::memory_order_relaxed);
  RecordHistory();
  return Status::OK();
}

void DistMvtoTxn::Abort() {
  if (finished_) return;
  finished_ = true;
  for (int site_id : participants_) {
    db_->network_.Send(MessageType::kAbort, home_site_, site_id);
    auto& site = *db_->sites_[site_id];
    std::lock_guard<std::mutex> guard(site.mu);
    for (ObjectKey key : write_order_) {
      if (db_->SiteOf(key) != site_id) continue;
      auto st = site.table.find(key);
      if (st == site.table.end()) continue;
      auto it = st->second.versions.find(ts_);
      if (it != st->second.versions.end() && !it->second.committed) {
        st->second.versions.erase(it);
      }
    }
    site.cv.notify_all();
  }
  auto& aborts = cls_ == TxnClass::kReadOnly ? db_->counters_.ro_aborts
                                             : db_->counters_.rw_aborts;
  aborts.fetch_add(1, std::memory_order_relaxed);
}

void DistMvtoTxn::RecordHistory() {
  if (db_->history() == nullptr) return;
  TxnRecord record;
  record.id = id_;
  record.cls = cls_;
  record.number = ts_;
  record.reads.reserve(reads_.size());
  for (const ReadEntry& r : reads_) {
    record.reads.push_back(RecordedRead{r.key, r.version, r.writer});
  }
  record.writes.reserve(write_order_.size());
  for (ObjectKey key : write_order_) {
    record.writes.push_back(RecordedWrite{key, ts_});
  }
  db_->history_.Record(std::move(record));
}

}  // namespace mvcc
