#ifndef MVCC_DIST_SITE_H_
#define MVCC_DIST_SITE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/lock_manager.h"
#include "common/counters.h"
#include "common/ids.h"
#include "common/result.h"
#include "gc/garbage_collector.h"
#include "gc/reader_registry.h"
#include "storage/object_store.h"
#include "vc/version_control.h"

namespace mvcc {

// One database site in the distributed extension (Section 6): its own
// partition of the object store, its own lock manager for read-write
// transactions, and — crucially — its own version control module with its
// own tnc/vtnc/VCQueue, in site-tagged numbering mode.
//
// Read-write transactions run strict 2PL locally and two-phase commit
// globally; the PREPARE response carries a proposed transaction number
// (a local VCregister), and the COMMIT request carries the agreed global
// number (max of all proposals), to which the local registration is
// promoted. Read-only transactions touch a site only through
// SnapshotRead().
class Site {
 public:
  Site(int site_id, EventCounters* counters);
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  int id() const { return site_id_; }

  // Fault injection: a "down" site refuses new work with kUnavailable.
  // In-flight local state is kept so the coordinator's abort can clean
  // up after the site "recovers" (tests flip this around 2PC phases).
  void SetDown(bool down) { down_.store(down, std::memory_order_release); }
  bool IsDown() const { return down_.load(std::memory_order_acquire); }

  // Loads `key` with an initial version (number 0, writer T0).
  void Preload(ObjectKey key, const Value& initial_value);

  // ---- Read-write transaction participant interface ----

  // Acquires a shared lock and returns the latest committed version.
  Result<VersionRead> Read(TxnId txn, ObjectKey key);

  // Acquires an exclusive lock and buffers the write.
  Status Write(TxnId txn, ObjectKey key, Value value);

  // 2PC phase 1: past the local lock point — register with local version
  // control and return the proposed transaction number.
  Result<TxnNumber> Prepare(TxnId txn, uint32_t tiebreak);

  // 2PC phase 2: promote the proposal to the agreed `global_tn`, install
  // the buffered writes, release locks, and complete.
  void Commit(TxnId txn, TxnNumber proposed, TxnNumber global_tn);

  // Aborts the local participation (drops buffered writes, releases
  // locks, discards any registration).
  void Abort(TxnId txn, TxnNumber proposed_or_zero);

  // ---- Read-only transaction interface ----

  // Returns this site's vtnc: the start number handed to a read-only
  // transaction whose home is this site.
  TxnNumber StartReadOnly() const { return vc_.Start(); }

  // Reads the largest version of `key` <= sn, after (a) pushing the local
  // number counter past sn so no future local registration can undercut
  // the snapshot, and (b) waiting out registered-but-incomplete local
  // transactions with numbers <= sn. (a) is a counter bump and (b) can
  // only wait on transactions already in their commit phase, so this adds
  // no concurrency control — the read still cannot deadlock or abort.
  //
  // The read pins `sn` in this site's reader registry for its duration,
  // so local garbage collection cannot prune the snapshot out from under
  // it. If GC already advanced past sn before the reader arrived, the
  // version may be gone: the read then reports Unavailable ("snapshot too
  // old") — the one failure mode the paper concedes for read-only
  // transactions ("barring the unavailability of an appropriate version
  // ... due to garbage collection", Section 4.2).
  Result<VersionRead> SnapshotRead(TxnNumber sn, ObjectKey key);

  // Snapshot range scan of this site's partition at `sn`: every local
  // key in [lo, hi] with a version visible at sn. Same pinning and
  // "snapshot too old" semantics as SnapshotRead; the whole scan is
  // pinned once.
  Result<std::vector<std::pair<ObjectKey, VersionRead>>> SnapshotScan(
      TxnNumber sn, ObjectKey lo, ObjectKey hi);

  // Local garbage collection under the distributed watermark:
  // min(local vtnc, oldest snapshot currently pinned here). Returns
  // versions reclaimed.
  size_t RunGc();

  ObjectStore& store() { return store_; }
  VersionControl& version_control() { return vc_; }
  LockManager& locks() { return locks_; }
  ReaderRegistry& readers() { return readers_; }

 private:
  struct Buffered {
    std::unordered_map<ObjectKey, Value> writes;
    std::vector<ObjectKey> order;
  };

  const int site_id_;
  std::atomic<bool> down_{false};
  // Highest pruning watermark any collection pass has used; snapshots
  // below it may be incomplete and are refused (post-checked).
  std::atomic<VersionNumber> gc_floor_{0};
  ReaderRegistry readers_;
  ObjectStore store_;
  VersionControl vc_;
  LockManager locks_;

  std::mutex buffered_mu_;
  std::unordered_map<TxnId, Buffered> buffered_;
};

}  // namespace mvcc

#endif  // MVCC_DIST_SITE_H_
