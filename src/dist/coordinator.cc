#include "dist/coordinator.h"

#include <algorithm>

namespace mvcc {

Status TwoPhaseCommitCoordinator::CommitTransaction(
    TxnId txn, uint32_t tiebreak, const std::vector<Site*>& participants,
    TxnNumber* global_tn) {
  // Phase 1: collect proposals. Every participant is past its local lock
  // point; PREPARE cannot be refused in this in-memory setting (no media
  // failures), so the vote is always "yes" and carries the proposal.
  std::vector<TxnNumber> proposals;
  proposals.reserve(participants.size());
  TxnNumber agreed = 0;
  for (size_t i = 0; i < participants.size(); ++i) {
    Site* site = participants[i];
    Result<TxnNumber> proposed =
        network_->Send(MessageType::kPrepare, coordinator_site_,
                       site->id())
            ? site->Prepare(txn, tiebreak)
            : Result<TxnNumber>(Status::Unavailable(
                  "PREPARE message to site " +
                  std::to_string(site->id()) + " lost"));
    if (!proposed.ok()) {
      // A participant voted no (it is down, or its PREPARE was lost —
      // presumed abort): roll back everywhere. Already-prepared sites
      // discard their registration; the failed and unprepared sites only
      // drop buffered state and locks.
      for (size_t j = 0; j < participants.size(); ++j) {
        SendReliably(MessageType::kAbort, participants[j]->id());
        participants[j]->Abort(
            txn, j < i ? proposals[j] : kInvalidTxnNumber);
      }
      return Status::Aborted("2PC prepare failed at site " +
                             std::to_string(site->id()) + ": " +
                             proposed.status().ToString());
    }
    proposals.push_back(*proposed);
    agreed = std::max(agreed, *proposed);
  }

  // Phase 2: commit at the agreed (maximum) number everywhere.
  for (size_t i = 0; i < participants.size(); ++i) {
    SendReliably(MessageType::kCommit, participants[i]->id());
    participants[i]->Commit(txn, proposals[i], agreed);
  }
  *global_tn = agreed;
  return Status::OK();
}

void TwoPhaseCommitCoordinator::SendReliably(MessageType type,
                                             int to_site) {
  // Phase-2 outcomes are decided: a lost COMMIT or ABORT is retransmitted
  // until it lands (the participant holds locks and cannot be left in
  // doubt). Each retransmission re-enters the network, so under
  // simulation other tasks interleave with the retry window.
  while (!network_->Send(type, coordinator_site_, to_site)) {
  }
}

void TwoPhaseCommitCoordinator::AbortTransaction(
    TxnId txn, const std::vector<Site*>& participants) {
  for (Site* site : participants) {
    SendReliably(MessageType::kAbort, site->id());
    site->Abort(txn, kInvalidTxnNumber);
  }
}

}  // namespace mvcc
