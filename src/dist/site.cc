#include "dist/site.h"

#include <algorithm>
#include <string>
#include <utility>

namespace mvcc {

Site::Site(int site_id, EventCounters* counters)
    : site_id_(site_id),
      store_(/*num_shards=*/16),
      vc_(NumberingMode::kSiteTagged),
      locks_(DeadlockPolicy::kWaitDie, counters, /*num_shards=*/16) {}

void Site::Preload(ObjectKey key, const Value& initial_value) {
  store_.GetOrCreate(key)->Install(Version{0, initial_value, 0});
}

Result<VersionRead> Site::Read(TxnId txn, ObjectKey key) {
  if (IsDown()) {
    return Status::Unavailable("site " + std::to_string(site_id_) +
                               " is down");
  }
  {
    std::lock_guard<std::mutex> guard(buffered_mu_);
    auto it = buffered_.find(txn);
    if (it != buffered_.end()) {
      auto own = it->second.writes.find(key);
      if (own != it->second.writes.end()) {
        return VersionRead{kPendingVersion, txn, own->second};
      }
    }
  }
  Status s = locks_.Acquire(txn, key, LockMode::kShared);
  if (!s.ok()) return s;
  VersionChain* chain = store_.Find(key);
  if (chain == nullptr) {
    return Status::NotFound("site " + std::to_string(site_id_) + " key " +
                            std::to_string(key));
  }
  return chain->ReadLatest();
}

Status Site::Write(TxnId txn, ObjectKey key, Value value) {
  if (IsDown()) {
    return Status::Unavailable("site " + std::to_string(site_id_) +
                               " is down");
  }
  Status s = locks_.Acquire(txn, key, LockMode::kExclusive);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> guard(buffered_mu_);
  Buffered& buf = buffered_[txn];
  auto [it, inserted] = buf.writes.try_emplace(key, std::move(value));
  if (inserted) {
    buf.order.push_back(key);
  } else {
    it->second = std::move(value);
  }
  return Status::OK();
}

Result<TxnNumber> Site::Prepare(TxnId txn, uint32_t tiebreak) {
  if (IsDown()) {
    return Status::Unavailable("site " + std::to_string(site_id_) +
                               " voted no: down");
  }
  // All local locks are held: this site's lock point has passed, the
  // local serial position is fixed — register now (Figure 4 discipline).
  // kSiteTagged numbering runs VersionControl's locked map core: the
  // Promote() below moves this entry to a non-dense global number during
  // 2PC agreement, which the dense completion ring cannot index.
  return vc_.Register(txn, tiebreak);
}

void Site::Commit(TxnId txn, TxnNumber proposed, TxnNumber global_tn) {
  vc_.Promote(proposed, global_tn);
  Buffered buf;
  {
    std::lock_guard<std::mutex> guard(buffered_mu_);
    auto it = buffered_.find(txn);
    if (it != buffered_.end()) {
      buf = std::move(it->second);
      buffered_.erase(it);
    }
  }
  for (ObjectKey key : buf.order) {
    store_.GetOrCreate(key)->Install(
        Version{global_tn, std::move(buf.writes[key]), txn});
  }
  locks_.ReleaseAll(txn);
  vc_.Complete(global_tn);
}

void Site::Abort(TxnId txn, TxnNumber proposed_or_zero) {
  {
    std::lock_guard<std::mutex> guard(buffered_mu_);
    buffered_.erase(txn);
  }
  locks_.ReleaseAll(txn);
  if (proposed_or_zero != kInvalidTxnNumber) vc_.Discard(proposed_or_zero);
}

Result<VersionRead> Site::SnapshotRead(TxnNumber sn, ObjectKey key) {
  if (IsDown()) {
    return Status::Unavailable("site " + std::to_string(site_id_) +
                               " is down");
  }
  vc_.AdvanceCounterPast(sn);
  vc_.WaitNoActiveAtOrBelow(sn);
  // Pin the snapshot against local garbage collection for the read.
  readers_.Enter(sn);
  Result<VersionRead> read = [&]() -> Result<VersionRead> {
    VersionChain* chain = store_.Find(key);
    if (chain == nullptr) {
      return Status::NotFound("site " + std::to_string(site_id_) +
                              " key " + std::to_string(key));
    }
    return chain->Read(sn);
  }();
  // Soundness post-check: any collection pass that could have removed
  // versions at or below sn raised gc_floor_ past sn BEFORE pruning.
  // Checking after the read (while still effectively pinned) therefore
  // catches every harmful interleaving; a pass starting after this check
  // sees our pin and keeps the snapshot.
  const bool too_old = gc_floor_.load(std::memory_order_acquire) > sn;
  readers_.Exit(sn);
  if (too_old) {
    return Status::Unavailable("snapshot " + std::to_string(sn) +
                               " too old at site " +
                               std::to_string(site_id_) +
                               " (garbage collected)");
  }
  return read;
}

Result<std::vector<std::pair<ObjectKey, VersionRead>>> Site::SnapshotScan(
    TxnNumber sn, ObjectKey lo, ObjectKey hi) {
  if (IsDown()) {
    return Status::Unavailable("site " + std::to_string(site_id_) +
                               " is down");
  }
  vc_.AdvanceCounterPast(sn);
  vc_.WaitNoActiveAtOrBelow(sn);
  readers_.Enter(sn);
  std::vector<std::pair<ObjectKey, VersionRead>> out;
  for (ObjectKey key : store_.KeysInRange(lo, hi)) {
    VersionChain* chain = store_.Find(key);
    if (chain == nullptr) continue;
    Result<VersionRead> read = chain->Read(sn);
    // NotFound = object born after the snapshot (or, if GC interfered,
    // the post-check below rejects the whole scan).
    if (read.ok()) out.emplace_back(key, std::move(*read));
  }
  const bool too_old = gc_floor_.load(std::memory_order_acquire) > sn;
  readers_.Exit(sn);
  if (too_old) {
    return Status::Unavailable("snapshot " + std::to_string(sn) +
                               " too old at site " +
                               std::to_string(site_id_) +
                               " (garbage collected)");
  }
  return out;
}

size_t Site::RunGc() {
  VersionNumber watermark = vc_.vtnc();
  if (auto pinned = readers_.MinActive()) {
    watermark = std::min(watermark, *pinned);
  }
  // Publish the floor BEFORE pruning so concurrent snapshot readers'
  // post-checks see it (see SnapshotRead).
  VersionNumber current = gc_floor_.load(std::memory_order_relaxed);
  while (current < watermark &&
         !gc_floor_.compare_exchange_weak(current, watermark,
                                          std::memory_order_release)) {
  }
  return store_.PruneAll(watermark);
}

}  // namespace mvcc
