#ifndef MVCC_DIST_NETWORK_H_
#define MVCC_DIST_NETWORK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iterator>

namespace mvcc {

// Message categories exchanged between sites in the distributed
// simulation and the replication tier. Message counts are the measured
// quantity of experiment E7: read-only transactions in the distributed VC
// scheme commit with ZERO messages beyond their remote reads (no
// two-phase commit, unlike distributed MVTO where readers update r-ts at
// every site). The replication categories carry primary-to-replica log
// shipping (src/repl/): read-only transactions served by a replica cost
// zero messages of ANY category — the shipping traffic is per committed
// batch, not per reader.
enum class MessageType {
  kRemoteRead = 0,   // read-write remote read (lock + fetch)
  kRemoteWrite,      // read-write remote write (lock + buffer)
  kPrepare,          // 2PC phase 1 (carries the tn proposal back)
  kCommit,           // 2PC phase 2 (carries the agreed global tn)
  kAbort,
  kSnapshotRead,     // read-only remote snapshot read
  kReplBatch,        // WAL shipping: commit batch / horizon / resync image
  kReplAck,          // replica cumulative apply acknowledgement
  kCount,            // sentinel — MUST stay the bound of every per-type array
};

// Display names for per-type tables (bench_distributed, bench_replication).
// The static_assert pins the "kCount is the array bound everywhere"
// contract: adding a MessageType without updating every consumer fails to
// compile here rather than silently mis-indexing.
inline constexpr const char* kMessageTypeNames[] = {
    "remote_read", "remote_write", "prepare",    "commit",
    "abort",       "snapshot_read", "repl_batch", "repl_ack",
};
static_assert(std::size(kMessageTypeNames) ==
                  static_cast<size_t>(MessageType::kCount),
              "kMessageTypeNames must cover every MessageType");

// In-process stand-in for a message-passing network between database
// sites. Calls are executed synchronously; each Send() optionally spins
// for `delay_ns` to model propagation latency and bumps a per-type
// counter. This preserves the property under study — who must exchange
// how many messages — without a real transport.
//
// Under deterministic simulation (an installed SimHook), every send is a
// schedule point, may be delayed by extra scheduler steps, and may be
// DROPPED: Send() then returns false and the caller must treat the
// destination as unreachable for that message. Production runs always
// deliver (return true).
class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(int64_t delay_ns = 0) : delay_ns_(delay_ns) {}

  // Accounts (and delays) one message of the given type between two
  // distinct sites. Local calls (from == to) are free and uncounted.
  // Returns false if fault injection dropped the message.
  bool Send(MessageType type, int from_site, int to_site);

  uint64_t Count(MessageType type) const {
    return counts_[static_cast<size_t>(type)].load(
        std::memory_order_relaxed);
  }
  uint64_t Total() const;
  uint64_t Dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  int64_t delay_ns_;
  std::array<std::atomic<uint64_t>, static_cast<size_t>(MessageType::kCount)>
      counts_{};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace mvcc

#endif  // MVCC_DIST_NETWORK_H_
