#ifndef MVCC_DIST_DIST_MVTO_H_
#define MVCC_DIST_DIST_MVTO_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/ids.h"
#include "common/result.h"
#include "dist/network.h"
#include "history/history.h"
#include "txn/txn_context.h"

namespace mvcc {

class DistMvtoTxn;

// Distributed multiversion timestamp ordering — Reed's scheme [14]
// extended across sites, built as the measured comparator for the
// paper's Section 2 complaint:
//
//   "since read-only transactions update the database [r-ts metadata],
//    distributed read-only transactions require two-phase commit
//    protocol for their atomic commitment."
//
// Every transaction draws a globally unique, site-tagged Lamport
// timestamp at its home site. Reads — including read-only reads —
// update the r-ts of the version read at the owning site (a remote
// metadata write), may block on pending writes, and enroll the site as
// a COMMIT PARTICIPANT: at end, even a read-only transaction that
// touched more than zero remote sites runs prepare/commit rounds to
// atomically commit its metadata updates. Contrast with the VC scheme
// (DistributedDb), where read-only commit is local and free.
class DistMvtoDb {
 public:
  struct Options {
    int num_sites = 3;
    uint64_t preload_keys = 0;  // key k lives at site k % num_sites
    Value initial_value = "0";
    bool record_history = false;
  };

  explicit DistMvtoDb(Options options);
  DistMvtoDb(const DistMvtoDb&) = delete;
  DistMvtoDb& operator=(const DistMvtoDb&) = delete;

  std::unique_ptr<DistMvtoTxn> Begin(TxnClass cls, int home_site);

  int SiteOf(ObjectKey key) const {
    return static_cast<int>(key % sites_.size());
  }
  int num_sites() const { return static_cast<int>(sites_.size()); }

  SimulatedNetwork& network() { return network_; }
  EventCounters& counters() { return counters_; }
  History* history() { return options_.record_history ? &history_ : nullptr; }

 private:
  friend class DistMvtoTxn;

  struct VersionMeta {
    TxnNumber rts = 0;
    bool rts_by_ro = false;
    bool committed = false;
    TxnId writer = 0;
    Value value;
  };

  struct KeyState {
    std::map<TxnNumber, VersionMeta> versions;  // by w-ts
  };

  struct MvtoSite {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ObjectKey, KeyState> table;
    std::atomic<uint64_t> clock{0};  // Lamport counter (high part)
  };

  // Issues a site-tagged timestamp at `site` for transaction `id`.
  TxnNumber IssueTimestamp(int site, TxnId id);

  // Lamport push: ensure `site`'s clock is at least ts's counter part.
  void ObserveTimestamp(int site, TxnNumber ts);

  Options options_;
  SimulatedNetwork network_;
  EventCounters counters_;
  History history_;
  std::vector<std::unique_ptr<MvtoSite>> sites_;
  std::atomic<TxnId> next_txn_id_{1};
};

// A distributed MVTO transaction handle (single-threaded use).
class DistMvtoTxn {
 public:
  ~DistMvtoTxn();
  DistMvtoTxn(const DistMvtoTxn&) = delete;
  DistMvtoTxn& operator=(const DistMvtoTxn&) = delete;

  Result<Value> Read(ObjectKey key);
  Status Write(ObjectKey key, Value value);

  // Two-phase commit over every participant site — for read-only
  // transactions too, whenever they touched any site (the measured
  // drawback).
  Status Commit();
  void Abort();

  TxnId id() const { return id_; }
  TxnNumber timestamp() const { return ts_; }
  bool active() const { return !finished_; }

 private:
  friend class DistMvtoDb;
  DistMvtoTxn(DistMvtoDb* db, TxnId id, TxnClass cls, int home_site,
              TxnNumber ts);

  void AddParticipant(int site);
  void RecordHistory();

  DistMvtoDb* db_;
  TxnId id_;
  TxnClass cls_;
  int home_site_;
  TxnNumber ts_;
  bool finished_ = false;

  std::vector<int> participants_;
  std::unordered_map<ObjectKey, Value> write_set_;
  std::vector<ObjectKey> write_order_;
  std::vector<ReadEntry> reads_;
};

}  // namespace mvcc

#endif  // MVCC_DIST_DIST_MVTO_H_
