#include "dist/network.h"

#include "common/clock.h"

namespace mvcc {

void SimulatedNetwork::Send(MessageType type, int from_site, int to_site) {
  if (from_site == to_site) return;
  counts_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  if (delay_ns_ > 0) {
    const int64_t until = NowNanos() + delay_ns_;
    while (NowNanos() < until) {
      // Busy-wait: delays are sub-millisecond and we want to model
      // latency without descheduling storms in the benchmark.
    }
  }
}

uint64_t SimulatedNetwork::Total() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void SimulatedNetwork::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace mvcc
