#include "dist/network.h"

#include "common/clock.h"
#include "common/sim_hook.h"

namespace mvcc {

bool SimulatedNetwork::Send(MessageType type, int from_site, int to_site) {
  if (from_site == to_site) return true;
  counts_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  if (SimHook* hook = InstalledSimHook()) {
    // Every message is an interleaving opportunity; an injected delay is
    // extra scheduler steps (virtual propagation time), and a drop makes
    // this send fail outright — the caller handles the loss.
    hook->SchedulePoint("net.send");
    for (uint32_t d = hook->MessageDelaySteps(from_site, to_site); d > 0;
         --d) {
      hook->SchedulePoint("net.delay");
    }
    if (hook->ShouldDropMessage(from_site, to_site)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (delay_ns_ > 0) {
    const int64_t until = NowNanos() + delay_ns_;
    while (NowNanos() < until) {
      // Busy-wait: delays are sub-millisecond and we want to model
      // latency without descheduling storms in the benchmark.
    }
  }
  return true;
}

uint64_t SimulatedNetwork::Total() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void SimulatedNetwork::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace mvcc
